"""Epoch-timeline telemetry: zero-overhead default, decision-event
consistency, JSONL round-trip, and the report renderers."""

import json

import pytest

from repro import default_system, simulate
from repro.engine.stats import Stats
from repro.experiments.designs import make_policy
from repro.experiments.report import epoch_table, format_events
from repro.telemetry import (EPOCH_FIELDS, NULL_SINK, EpochRecorder,
                             JsonlSink, NullSink, TeeSink, read_jsonl,
                             validate_records)
from repro.traces.mixes import build_mix


def tiny_mix(seed=7):
    return build_mix("C1", cpu_refs=400, gpu_refs=4_000, seed=seed)


def tuned_mix(seed=7):
    """Long enough for the hill climber to make at least one move."""
    return build_mix("C1", cpu_refs=4_000, gpu_refs=30_000, seed=seed)


@pytest.fixture(scope="module")
def hydrogen_traced():
    """One instrumented hydrogen run shared by the event-consistency and
    round-trip tests (module-scoped: the run dominates test time)."""
    rec = EpochRecorder()
    res = simulate(default_system(), make_policy("hydrogen"), tuned_mix(),
                   telemetry=rec)
    return rec, res


# -- zero-overhead default --------------------------------------------------


def test_nullsink_is_disabled_noop():
    sink = NullSink()
    assert not sink.enabled
    sink.bind(lambda: 1.0)
    sink.epoch({"epoch": 0})
    sink.event("tuner.trial", param="cap")
    sink.close()
    assert sink.now is None  # bind is a deliberate no-op
    assert not NULL_SINK.enabled


def test_telemetry_does_not_change_results():
    """Enabling a sink is pure observation: numeric results and the stats
    counter registry are identical to an untraced run."""
    mix = tiny_mix()
    base = simulate(default_system(), make_policy("hydrogen"), mix)
    rec = EpochRecorder()
    traced = simulate(default_system(), make_policy("hydrogen"), mix,
                      telemetry=rec)
    assert rec.epochs, "sink saw no epochs"
    assert traced.stats == base.stats  # same counters, same values
    assert traced.cycles_cpu == base.cycles_cpu
    assert traced.cycles_gpu == base.cycles_gpu
    assert traced.policy_state == base.policy_state


def test_nullsink_never_builds_samples(monkeypatch):
    """The disabled default skips sample construction entirely (the
    deterministic proxy for 'no measurable slowdown')."""
    from repro.engine.simulator import Simulation

    def boom(self, *a, **kw):  # pragma: no cover - must not run
        raise AssertionError("sample built on the NullSink path")

    monkeypatch.setattr(Simulation, "_telemetry_sample", boom)
    res = simulate(default_system(), make_policy("hydrogen"), tiny_mix())
    assert res.cycles_cpu > 0


# -- epoch samples ----------------------------------------------------------


def test_epoch_samples_schema_and_queries():
    rec = EpochRecorder()
    simulate(default_system(), make_policy("hydrogen"), tiny_mix(),
             telemetry=rec)
    for sample in rec.epochs:
        for field in EPOCH_FIELDS:
            assert field in sample, field
            assert isinstance(sample[field], (int, float)), field
        assert 0.0 <= sample["hit_rate_cpu"] <= 1.0
        assert 0.0 <= sample["occ_cpu"] + sample["occ_gpu"] <= 1.0 + 1e-9
    assert [s["epoch"] for s in rec.epochs] == list(range(len(rec.epochs)))
    assert rec.last(3) == rec.epochs[-3:]
    assert rec.last(0) == []


def test_nontuned_policy_gets_zero_defaults():
    """Policies without a tuner/faucet still emit full epoch records."""
    rec = EpochRecorder()
    simulate(default_system(), make_policy("baseline"), tiny_mix(),
             telemetry=rec)
    assert rec.epochs
    assert all(s["tokens_banked"] == 0.0 for s in rec.epochs)
    assert not rec.events_of("tuner.")
    validate_records(rec.records(meta={"design": "baseline"}))


# -- decision events --------------------------------------------------------


def test_tuner_events_match_end_state(hydrogen_traced):
    """The last config-carrying tuner event equals the applied end state —
    the trace is a faithful replay of the search (docs/telemetry.md)."""
    rec, res = hydrogen_traced
    moves = rec.events_of("tuner.")
    assert moves, "no tuner events in a tuned run"
    configs = [e["config"] for e in moves if "config" in e]
    assert configs, "no config-bearing tuner events"
    final = configs[-1]
    for knob in ("cap", "bw", "tok"):
        assert final[knob] == res.policy_state[knob], knob
    # Trials pair with an accept or revert outcome in order.
    kinds = [e["kind"] for e in moves]
    assert kinds.count("tuner.trial") >= kinds.count("tuner.accept")


def test_faucet_events(hydrogen_traced):
    rec, _ = hydrogen_traced
    refills = rec.events_of("faucet.refill")
    assert refills and all(e["amount"] >= 0 for e in refills)
    dry = rec.events_of("faucet.exhausted")
    assert dry, "expected at least one dry spell under GPU pressure"
    # Throttled: one exhaustion event per dry spell, never more than refills+1.
    assert len(dry) <= len(refills) + 1


def test_reconfig_events_carry_deltas(hydrogen_traced):
    rec, _ = hydrogen_traced
    applies = rec.events_of("reconfig.apply")
    assert applies, "tuner never reconfigured in a tuned run"
    for e in applies:
        assert e["cpu_ways_delta"] == e["cap_to"] - e["cap_from"]
        assert e["cpu_channels_delta"] == e["bw_to"] - e["bw_from"]
    gens = [e["generation"] for e in applies]
    assert gens == sorted(gens)


def test_event_order_decisions_before_sample(hydrogen_traced):
    """tuner/reconfig events of epoch N's decision precede epoch N's
    sample in the unified record stream."""
    rec, _ = hydrogen_traced
    records = rec.records()
    validate_records(records)
    assert records[0]["type"] == "meta"


# -- JSONL round-trip -------------------------------------------------------


def test_jsonl_roundtrip(tmp_path):
    path = tmp_path / "trace.jsonl"
    with JsonlSink(path, meta={"design": "hydrogen", "mix": "C1"}) as sink:
        rec = EpochRecorder()
        simulate(default_system(), make_policy("hydrogen"), tiny_mix(),
                 telemetry=TeeSink(rec, sink))
    records = read_jsonl(path)
    validate_records(records)
    assert records[0] == {"type": "meta", "schema": 1,
                          "design": "hydrogen", "mix": "C1"}
    epochs = [r for r in records if r["type"] == "epoch"]
    assert len(epochs) == len(rec.epochs)
    # Stream order interleaves decisions before their epoch's sample;
    # the recorder saw the identical samples.
    for disk, mem in zip(epochs, rec.epochs):
        for field in EPOCH_FIELDS:
            assert disk[field] == pytest.approx(mem[field])
    events = [r for r in records if r["type"] == "event"]
    assert len(events) == len(rec.events)


def test_jsonl_creates_parent_dirs(tmp_path):
    path = tmp_path / "a" / "b" / "t.jsonl"
    with JsonlSink(path):
        pass
    assert json.loads(path.read_text())["type"] == "meta"


def test_validate_records_rejects_bad_streams():
    with pytest.raises(ValueError, match="empty"):
        validate_records([])
    with pytest.raises(ValueError, match="meta"):
        validate_records([{"type": "epoch"}])
    with pytest.raises(ValueError, match="schema"):
        validate_records([{"type": "meta", "schema": 99}])
    meta = {"type": "meta", "schema": 1}
    with pytest.raises(ValueError, match="missing"):
        validate_records([meta, {"type": "epoch"}])
    sample = dict.fromkeys(EPOCH_FIELDS, 0.0)
    with pytest.raises(ValueError, match="not numeric"):
        validate_records([meta, {"type": "epoch", **sample, "t": "later"}])
    with pytest.raises(ValueError, match="kind"):
        validate_records([meta, {"type": "event"}])
    with pytest.raises(ValueError, match="unknown type"):
        validate_records([meta, {"type": "mystery"}])
    validate_records([meta, {"type": "epoch", **sample},
                      {"type": "event", "kind": "tuner.trial"}])


# -- Stats.delta requested keys (satellite bugfix) --------------------------


def test_stats_delta_keeps_requested_zero_keys():
    st = Stats()
    st.add("a.hits", 5.0)
    snap = st.snapshot()
    st.add("a.hits", 2.0)
    # Unchanged-counter keys vanish by default...
    assert st.delta(snap) == {"a.hits": 2.0}
    # ...but requested keys are explicit zeros, changed or not.
    d = st.delta(snap, keys=("a.hits", "b.misses"))
    assert d == {"a.hits": 2.0, "b.misses": 0.0}
    assert st.delta(st.snapshot(), keys=("a.hits",)) == {"a.hits": 0.0}


# -- renderers --------------------------------------------------------------


def test_epoch_table_and_event_rendering(hydrogen_traced):
    rec, _ = hydrogen_traced
    table = epoch_table(rec.epochs, last=5)
    lines = table.splitlines()
    assert len(lines) == 2 + 5  # header + rule + 5 rows
    assert "ipc_cpu" in lines[0] and "tok_spent" in lines[0]
    text = format_events(rec.events)
    assert "tuner." in text
    assert "faucet." not in text  # chatty stream excluded by default
    assert format_events(rec.events, prefixes=("faucet.",)).count("faucet.")
    assert format_events([]) == "(no events)"


def test_epoch_table_renders_missing_keys_as_dash():
    table = epoch_table([{"epoch": 0, "t": 5000.0, "ipc_cpu": 1.0}])
    assert "-" in table.splitlines()[-1]
