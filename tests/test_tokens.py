"""Tests for the token-based migration throttle (Section IV-B)."""

import pytest

from repro.core.tokens import (DEFAULT_TOKEN_FRAC, TOKEN_LEVELS,
                               PerChannelFaucets, TokenFaucet)


def test_consume_until_empty():
    f = TokenFaucet(frac=0.5, initial=3)
    assert f.try_consume(1)
    assert f.try_consume(2)
    assert not f.try_consume(1)
    assert f.denied == 1 and f.granted == 2


def test_dirty_migration_costs_two():
    f = TokenFaucet(initial=2)
    assert f.try_consume(2)  # refill + dirty writeback
    assert not f.try_consume(1)


def test_refill_is_fraction_of_observed():
    f = TokenFaucet(frac=0.1, initial=0)
    f.observe(1000)
    added = f.refill()
    assert added == pytest.approx(100.0)
    assert f.tokens == pytest.approx(100.0)
    # observation window resets
    assert f.refill() == pytest.approx(0.0)


def test_refill_banking_is_capped():
    f = TokenFaucet(frac=0.5, initial=0, bank_cap_mult=2.0)
    for _ in range(10):
        f.observe(100)
        f.refill()
    assert f.tokens <= 100.0  # 2 * (0.5*100)


def test_idle_period_keeps_banked_tokens():
    """Regression: an idle refill (observed == 0) used to collapse the cap
    to 1.0 and silently confiscate the whole bank."""
    f = TokenFaucet(frac=0.5, initial=0.0)
    f.observe(100)
    f.refill()                    # banks 50 tokens
    assert f.tokens == pytest.approx(50.0)
    added = f.refill()            # idle period: nothing observed
    assert added == 0.0
    assert f.tokens == pytest.approx(50.0)  # bank retained
    for _ in range(5):            # stays retained over a long idle stretch
        f.refill()
    assert f.tokens == pytest.approx(50.0)


def test_initial_bank_survives_idle_start():
    """Before any traffic there is no steady-state refill estimate, so the
    bootstrap bank must not be clamped away."""
    f = TokenFaucet(initial=256.0)
    f.refill()
    assert f.tokens == pytest.approx(256.0)


def test_cap_tracks_steady_state_refill():
    f = TokenFaucet(frac=0.5, initial=0.0, bank_cap_mult=2.0)
    for _ in range(6):
        f.observe(100)
        f.refill()
    assert f.tokens <= 100.0      # capped at 2x the steady refill of 50
    f.refill()                    # idle tick does not shrink the bank
    assert f.tokens <= 100.0 and f.tokens > 1.0


def test_zero_frac_denies_everything_after_initial():
    f = TokenFaucet(frac=0.0, initial=0)
    f.observe(10_000)
    f.refill()
    assert not f.try_consume(1)


def test_negative_frac_rejected():
    with pytest.raises(ValueError):
        TokenFaucet(frac=-0.1)


def test_token_levels_ordered_and_default_present():
    assert list(TOKEN_LEVELS) == sorted(TOKEN_LEVELS)
    assert DEFAULT_TOKEN_FRAC in TOKEN_LEVELS


def test_per_channel_independence():
    pc = PerChannelFaucets(2, frac=0.5, initial=4)  # 2 tokens per channel
    assert pc.try_consume(0, 2)
    assert not pc.try_consume(0, 1)  # channel 0 drained
    assert pc.try_consume(1, 1)      # channel 1 untouched
    assert pc.denied == 1 and pc.granted == 2


def test_per_channel_frac_setter():
    pc = PerChannelFaucets(4)
    pc.frac = 0.25
    assert all(f.frac == 0.25 for f in pc.faucets)
    assert pc.frac == 0.25


def test_per_channel_refill():
    pc = PerChannelFaucets(2, frac=0.5, initial=0)
    pc.observe(0, 100)
    pc.observe(1, 100)
    assert pc.refill() == pytest.approx(100.0)
