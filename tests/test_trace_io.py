"""Tests for trace persistence and custom mix specs."""

import numpy as np
import pytest

from repro.traces.base import generate_trace
from repro.traces.cpu import cpu_spec
from repro.traces.io import (build_custom_mix, load_mix, load_trace,
                             parse_mix_spec, save_mix, save_trace)
from repro.traces.mixes import build_mix


def test_trace_roundtrip(tmp_path):
    tr = generate_trace(cpu_spec("mcf"), 2000, seed=1, base=1 << 22)
    path = tmp_path / "mcf.npz"
    save_trace(tr, path)
    tr2 = load_trace(path)
    assert tr2.name == "mcf" and tr2.klass == "cpu"
    assert tr2.footprint == tr.footprint and tr2.base == tr.base
    assert np.array_equal(tr2.addrs, tr.addrs)
    assert np.array_equal(tr2.writes, tr.writes)
    assert np.array_equal(tr2.gaps, tr.gaps)


def test_mix_roundtrip(tmp_path):
    mix = build_mix("C2", cpu_refs=500, gpu_refs=1000)
    paths = save_mix(mix, tmp_path / "traces")
    assert len(paths) == 9
    mix2 = load_mix("C2", tmp_path / "traces")
    assert len(mix2.cpu_traces) == 8 and len(mix2.gpu_traces) == 1
    assert np.array_equal(mix2.gpu_traces[0].addrs, mix.gpu_traces[0].addrs)


def test_load_missing_mix(tmp_path):
    with pytest.raises(FileNotFoundError):
        load_mix("C9", tmp_path)


def test_parse_mix_spec():
    assert parse_mix_spec("gcc-mcf:backprop") == (("gcc", "mcf"), "backprop")
    with pytest.raises(ValueError):
        parse_mix_spec("gcc-mcf")
    with pytest.raises(ValueError):
        parse_mix_spec(":backprop")


def test_build_custom_mix_copies():
    mix = build_custom_mix("gcc-mcf:bert", cpu_refs=400, gpu_refs=800)
    # 2 workloads -> 4 copies each to fill 8 cores.
    assert len(mix.cpu_traces) == 8
    assert mix.gpu_traces[0].name == "bert"
    assert mix.name == "gcc-mcf:bert"


def test_build_custom_mix_unknown_workload():
    with pytest.raises(KeyError):
        build_custom_mix("gcc-doom:bert", cpu_refs=100, gpu_refs=100)


def test_custom_mix_regions_disjoint():
    mix = build_custom_mix("lbm-xz-roms:srad", cpu_refs=300, gpu_refs=300)
    ranges = []
    for t in mix.traces:
        lo, hi = int(t.addrs.min()), int(t.addrs.max())
        for plo, phi in ranges:
            assert hi < plo or lo > phi
        ranges.append((lo, hi))
