"""Tests for synthetic trace generation (Table II substitution)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import CACHELINE, KB, MB
from repro.traces.base import TraceSpec, characterize, generate_trace
from repro.traces.cpu import CPU_SPECS, cpu_spec
from repro.traces.gpu import GPU_SPECS, gpu_spec
from repro.traces.mixes import (ALL_MIXES, CPU_COPIES, MIXES, build_mix,
                                cpu_only, gpu_only)


def test_determinism():
    spec = cpu_spec("mcf")
    a = generate_trace(spec, 5000, seed=42)
    b = generate_trace(spec, 5000, seed=42)
    assert np.array_equal(a.addrs, b.addrs)
    assert np.array_equal(a.gaps, b.gaps)
    c = generate_trace(spec, 5000, seed=43)
    assert not np.array_equal(a.addrs, c.addrs)


def test_addresses_within_footprint():
    for spec in list(CPU_SPECS.values()) + list(GPU_SPECS.values()):
        tr = generate_trace(spec, 2000, seed=1, base=1 << 30)
        assert tr.addrs.min() >= 1 << 30
        assert tr.addrs.max() < (1 << 30) + spec.footprint


def test_addresses_cacheline_aligned():
    tr = generate_trace(cpu_spec("gcc"), 1000, seed=2)
    assert (tr.addrs % CACHELINE == 0).all()


def test_write_fraction_approximate():
    spec = cpu_spec("lbm")  # write_frac 0.45
    tr = generate_trace(spec, 20_000, seed=3)
    assert abs(tr.writes.mean() - spec.write_frac) < 0.02


def test_gap_mean_approximate():
    spec = gpu_spec("backprop")
    tr = generate_trace(spec, 50_000, seed=4)
    assert tr.gaps.mean() == pytest.approx(spec.gap_mean, rel=0.1)
    assert (tr.gaps >= 0).all()
    assert tr.gaps == pytest.approx(np.round(tr.gaps))  # integer gaps


def test_streaming_has_spatial_locality():
    """A streaming-heavy trace touches each 256B block several times."""
    tr = generate_trace(cpu_spec("lbm"), 30_000, seed=5)
    c = characterize(tr)
    assert c["refs_per_block"] > 2.0


def test_hot_trace_has_temporal_locality():
    tr = generate_trace(cpu_spec("mcf"), 30_000, seed=6)
    lines, counts = np.unique(tr.addrs // CACHELINE, return_counts=True)
    # The hottest 10% of lines absorb a disproportionate share.
    counts.sort()
    top = counts[-len(counts) // 10:].sum()
    assert top / counts.sum() > 0.2


def test_instructions_counts_gaps():
    tr = generate_trace(cpu_spec("xz"), 1000, seed=7)
    assert tr.instructions == pytest.approx(1000 + tr.gaps.sum())


def test_rebased_trace():
    tr = generate_trace(cpu_spec("xz"), 100, seed=8, base=0)
    tr2 = tr.rebased(4 * MB)
    assert tr2.addrs.min() >= 4 * MB
    assert np.array_equal(tr2.addrs - 4 * MB, tr.addrs)


def test_unknown_workload_raises():
    with pytest.raises(KeyError):
        cpu_spec("doom")
    with pytest.raises(KeyError):
        gpu_spec("doom")


def test_invalid_refs():
    with pytest.raises(ValueError):
        generate_trace(cpu_spec("gcc"), 0, seed=0)


def test_table2_mixes_complete():
    assert len(MIXES) == 12
    assert ALL_MIXES == tuple(f"C{i}" for i in range(1, 13))
    for cpu_names, gpu_name in MIXES.values():
        assert len(cpu_names) == 4
        for n in cpu_names:
            assert n in CPU_SPECS
        assert gpu_name in GPU_SPECS


def test_build_mix_structure():
    mix = build_mix("C1", cpu_refs=1000, gpu_refs=2000)
    assert len(mix.cpu_traces) == 4 * CPU_COPIES
    assert len(mix.gpu_traces) == 1
    assert all(t.klass == "cpu" for t in mix.cpu_traces)
    assert mix.gpu_traces[0].klass == "gpu"
    assert mix.gpu_traces[0].name == "backprop"


def test_mix_regions_disjoint():
    mix = build_mix("C3", cpu_refs=2000, gpu_refs=2000)
    ranges = []
    for t in mix.traces:
        lo, hi = int(t.addrs.min()), int(t.addrs.max())
        for plo, phi in ranges:
            assert hi < plo or lo > phi, "agent address regions overlap"
        ranges.append((lo, hi))


def test_mix_copies_differ():
    mix = build_mix("C1", cpu_refs=1000, gpu_refs=1000)
    a, b = mix.cpu_traces[0], mix.cpu_traces[1]
    assert a.name == b.name  # two copies of the same workload
    assert not np.array_equal(a.addrs - a.base, b.addrs - b.base)


def test_mix_deterministic_across_processes():
    """Seeds must not depend on PYTHONHASHSEED (no hash())."""
    a = build_mix("C7", cpu_refs=500, gpu_refs=500, seed=9)
    b = build_mix("C7", cpu_refs=500, gpu_refs=500, seed=9)
    assert np.array_equal(a.cpu_traces[0].addrs, b.cpu_traces[0].addrs)


def test_scale_applies_to_refs_only():
    m1 = build_mix("C1", cpu_refs=4000, gpu_refs=8000, scale=0.5)
    assert len(m1.cpu_traces[0]) == 2000
    assert len(m1.gpu_traces[0]) == 4000
    # footprints unchanged
    m2 = build_mix("C1", cpu_refs=4000, gpu_refs=8000, scale=1.0)
    assert m1.cpu_traces[0].footprint == m2.cpu_traces[0].footprint


def test_cpu_only_gpu_only():
    mix = build_mix("C5", cpu_refs=500, gpu_refs=500)
    assert cpu_only(mix).gpu_traces == ()
    assert gpu_only(mix).cpu_traces == ()
    assert len(cpu_only(mix).cpu_traces) == 8


def test_unknown_mix_raises():
    with pytest.raises(KeyError):
        build_mix("C99")


@settings(max_examples=20, deadline=None)
@given(stream=st.floats(0, 1), hot=st.floats(0, 1), seed=st.integers(0, 999))
def test_any_mixture_generates_valid_trace(stream, hot, seed):
    total = stream + hot
    if total > 1:
        stream, hot = stream / total, hot / total
    spec = TraceSpec("x", "cpu", footprint=256 * KB, stream_frac=stream,
                     hot_frac=hot, hot_set_frac=0.2, write_frac=0.3,
                     gap_mean=2.0)
    tr = generate_trace(spec, 500, seed=seed)
    assert len(tr) == 500
    assert tr.addrs.min() >= 0
    assert tr.addrs.max() < spec.footprint
