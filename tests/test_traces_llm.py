"""The LLM KV-cache trace family: determinism, picklability, and the
address/schedule contract the policies in repro.hybrid.policies.llm
decode (docs/workloads.md)."""

from __future__ import annotations

import pickle

import numpy as np
import pytest

from repro.config import CACHELINE
from repro.experiments.sweep import MixSpec
from repro.traces.llm import (LLM_MIX_NAMES, LLM_MIXES, LLM_SPECS,
                              build_llm_mix, generate_kvcache_trace,
                              llm_spec)
from repro.traces.mixes import build_mix

N_REFS = 6000


def traces_equal(a, b) -> bool:
    return (np.array_equal(a.addrs, b.addrs)
            and np.array_equal(a.writes, b.writes)
            and np.array_equal(a.gaps, b.gaps)
            and (a.name, a.klass, a.footprint, a.base)
            == (b.name, b.klass, b.footprint, b.base))


# -- generator contract ------------------------------------------------------

@pytest.mark.parametrize("name", sorted(LLM_SPECS))
def test_generator_deterministic(name):
    spec = llm_spec(name)
    a = generate_kvcache_trace(spec, N_REFS, seed=13)
    b = generate_kvcache_trace(spec, N_REFS, seed=13)
    assert traces_equal(a, b)
    # A different seed moves the probes/gaps (the prefill schedule is
    # deliberately seed-independent, so compare the stochastic columns).
    c = generate_kvcache_trace(spec, N_REFS, seed=14)
    assert not (np.array_equal(a.addrs, c.addrs)
                and np.array_equal(a.gaps, c.gaps))


@pytest.mark.parametrize("name", sorted(LLM_SPECS))
def test_generator_bounds_and_alignment(name):
    spec = llm_spec(name)
    tr = generate_kvcache_trace(spec, N_REFS, seed=7, base=1 << 24)
    assert len(tr) == N_REFS
    assert tr.klass == "gpu"
    assert tr.footprint == spec.batch * spec.request_bytes
    assert (tr.addrs >= tr.base).all()
    assert (tr.addrs < tr.base + tr.footprint).all()
    assert (tr.addrs % CACHELINE == 0).all()


def test_prefill_burst_is_streaming_writes():
    spec = llm_spec("decode")
    tr = generate_kvcache_trace(spec, N_REFS, seed=7)
    n_pre = sum(spec.prompt_of(r) for r in range(spec.batch)) * spec.n_layers
    assert tr.writes[:n_pre].all()
    # request 0's prompt is written before request 1's region is touched
    first_req1 = int(np.argmax(tr.addrs >= spec.request_bytes))
    assert first_req1 == spec.prompt_of(0) * spec.n_layers


def test_decode_append_fraction_and_growth():
    spec = llm_spec("decode")
    tr = generate_kvcache_trace(spec, 40_000, seed=7)
    n_pre = sum(spec.prompt_of(r) for r in range(spec.batch)) * spec.n_layers
    dec = tr.writes[n_pre:]
    per_rl = spec.sink_tokens + spec.window + 1
    assert float(dec.mean()) == pytest.approx(1.0 / per_rl, abs=0.01)
    # sequence growth: the live token tail advances with the ref count
    tok = tr.addrs // spec.token_bytes % spec.capacity_tokens
    early = int(tok[: len(tr) // 4].max())
    late = int(tok.max())
    assert late > early


def test_batch_requests_interleave_per_step():
    spec = llm_spec("batch4")
    tr = generate_kvcache_trace(spec, 60_000, seed=7)
    n_pre = sum(spec.prompt_of(r) for r in range(spec.batch)) * spec.n_layers
    req = tr.addrs[n_pre:] // spec.request_bytes
    per_rl = spec.sink_tokens + spec.window + 1
    chunk = spec.n_layers * per_rl
    # within one decode step, requests take turns in round-robin order
    first_step = req[: spec.batch * chunk]
    assert first_step.reshape(spec.batch, chunk).tolist() == [
        [r] * chunk for r in range(spec.batch)]


def test_truncation_inside_prefill():
    spec = llm_spec("decode")
    tr = generate_kvcache_trace(spec, 100, seed=7)
    assert len(tr) == 100
    with pytest.raises(ValueError):
        generate_kvcache_trace(spec, 0, seed=7)


def test_scaled_shrinks_context_budget():
    spec = llm_spec("longctx").scaled(0.25)
    assert spec.capacity_tokens == 512
    assert spec.prompt_tokens <= spec.capacity_tokens // 2
    assert spec.window <= spec.capacity_tokens // 4
    tr = generate_kvcache_trace(spec, 2000, seed=7)
    assert tr.footprint == spec.batch * spec.request_bytes


# -- mix assembly ------------------------------------------------------------

@pytest.mark.parametrize("name", LLM_MIX_NAMES)
def test_build_llm_mix_layout(name):
    mix = build_llm_mix(name, cpu_refs=1200, gpu_refs=5000, seed=7)
    assert len(mix.gpu_traces) == 1
    gtr = mix.gpu_traces[0]
    spec = llm_spec(LLM_MIXES[name][1])
    # the KV region base is request-stride aligned (the address contract)
    assert gtr.base % spec.request_bytes == 0
    # agent regions are disjoint
    for ct in mix.cpu_traces:
        assert ct.base + ct.footprint <= gtr.base or ct.base >= gtr.base


def test_build_mix_dispatches_llm_names():
    via_dispatch = build_mix("kvcache", cpu_refs=1200, gpu_refs=5000, seed=7)
    direct = build_llm_mix("kvcache", cpu_refs=1200, gpu_refs=5000, seed=7)
    assert all(traces_equal(a, b)
               for a, b in zip(via_dispatch.traces, direct.traces))
    with pytest.raises(KeyError, match="LLM mixes"):
        build_mix("kvcache-nope")


def test_llm_mix_seed_streams_disjoint_from_table2():
    kv = build_mix("kvcache", cpu_refs=1200, gpu_refs=5000, seed=7)
    c1 = build_mix("C1", cpu_refs=1200, gpu_refs=5000, seed=7)
    # same host workload (gcc copy 0) but a different seed stream
    assert kv.cpu_traces[0].name == c1.cpu_traces[0].name == "gcc"
    assert not np.array_equal(kv.cpu_traces[0].addrs, c1.cpu_traces[0].addrs)


def test_footprint_scale_reaches_llm_spec():
    small = build_mix("kvcache", cpu_refs=1200, gpu_refs=5000, seed=7,
                      footprint_scale=0.5)
    full = build_mix("kvcache", cpu_refs=1200, gpu_refs=5000, seed=7)
    assert small.gpu_traces[0].footprint < full.gpu_traces[0].footprint


# -- picklability ------------------------------------------------------------

def test_specs_and_mixes_pickle_round_trip():
    for name in sorted(LLM_SPECS):
        spec = llm_spec(name)
        assert pickle.loads(pickle.dumps(spec)) == spec
    mix = build_llm_mix("kvcache", cpu_refs=1200, gpu_refs=5000, seed=7)
    clone = pickle.loads(pickle.dumps(mix))
    assert all(traces_equal(a, b) for a, b in zip(mix.traces, clone.traces))


def test_mixspec_builds_llm_mix_after_pickle():
    spec = MixSpec("kvcache", scale=0.05, seed=7)
    clone = pickle.loads(pickle.dumps(spec))
    assert all(traces_equal(a, b)
               for a, b in zip(spec.build().traces, clone.build().traces))
