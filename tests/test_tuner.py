"""Tests for the epoch-based hill-climbing tuner (Section IV-C)."""

import pytest

from repro.core.tuner import HillClimber, ParamSpace


def space(valid=None):
    return ParamSpace({"cap": (0, 1, 2, 3, 4), "bw": (0, 1, 2, 3)},
                      is_valid=valid or (lambda c: True))


def drive(hc, score_fn, epochs=100):
    """Feed the climber the score of whatever config is active."""
    applied = hc.current
    history = [dict(applied)]
    for _ in range(epochs):
        nxt = hc.on_epoch(score_fn(applied))
        if nxt is not None:
            applied = nxt
            history.append(dict(applied))
        if hc.converged and nxt is None:
            break
    return applied, history


def test_climbs_to_unimodal_optimum():
    hc = HillClimber(space(), {"cap": 0, "bw": 0}, eps=0.01)
    # Unimodal bowl with optimum at cap=3, bw=2.
    score = lambda c: 100 - (c["cap"] - 3) ** 2 - (c["bw"] - 2) ** 2
    final, _ = drive(hc, score)
    assert hc.converged
    assert hc.current == {"cap": 3, "bw": 2}


def test_holds_after_convergence():
    hc = HillClimber(space(), {"cap": 2, "bw": 1}, eps=0.01)
    score = lambda c: 10.0  # flat: nothing is ever better
    drive(hc, score)
    assert hc.converged
    assert hc.current == {"cap": 2, "bw": 1}
    # Further epochs return None (hold).
    assert hc.on_epoch(10.0) is None


def test_noise_margin_rejects_small_gains():
    hc = HillClimber(space(), {"cap": 2, "bw": 1}, eps=0.10)
    score = lambda c: 10.0 + 0.1 * c["cap"]  # only ~1% per step
    drive(hc, score)
    assert hc.current["cap"] == 2  # gains below eps not taken


def test_validity_constraint_respected():
    valid = lambda c: c["cap"] >= c["bw"]
    hc = HillClimber(space(valid), {"cap": 1, "bw": 1}, eps=0.01)
    score = lambda c: 100 - c["cap"]  # wants cap as low as possible
    drive(hc, score)
    assert hc.current["cap"] >= hc.current["bw"]


def test_invalid_start_rejected():
    with pytest.raises(ValueError):
        HillClimber(space(lambda c: c["cap"] >= 3), {"cap": 0, "bw": 0})


def test_reset_restarts_exploration():
    hc = HillClimber(space(), {"cap": 0, "bw": 0}, eps=0.01)
    drive(hc, lambda c: 100 - (c["cap"] - 2) ** 2)
    assert hc.converged
    hc.reset()
    assert not hc.converged
    # After reset it explores again and can follow a moved optimum.
    final, _ = drive(hc, lambda c: 100 - (c["cap"] - 4) ** 2)
    assert hc.current["cap"] == 4


def test_steps_counted():
    hc = HillClimber(space(), {"cap": 0, "bw": 0}, eps=0.01)
    drive(hc, lambda c: c["cap"] + c["bw"])
    assert hc.steps_taken > 0


def test_momentum_keeps_direction():
    """Accepted moves immediately retry the same direction (hill climbing
    walks a monotone slope in consecutive steps)."""
    hc = HillClimber(space(), {"cap": 0, "bw": 0}, eps=0.01)
    score = lambda c: 10.0 * c["cap"]
    _, history = drive(hc, score)
    caps = [h["cap"] for h in history]
    assert caps[-1] == 4
    # The climb is monotone in cap until the boundary.
    climbing = [c for c in caps if True]
    assert sorted(set(climbing)) == list(range(5))


def test_config_objects_are_copies():
    hc = HillClimber(space(), {"cap": 2, "bw": 1})
    c1 = hc.current
    c1["cap"] = 99
    assert hc.current["cap"] == 2
