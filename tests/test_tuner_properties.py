"""Property-based tests for the hill climber (Section IV-C)."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.tuner import HillClimber, ParamSpace


def make_space():
    return ParamSpace({"a": tuple(range(6)), "b": tuple(range(5))})


def drive(hc, score_fn, epochs=400):
    applied = hc.current
    for _ in range(epochs):
        nxt = hc.on_epoch(score_fn(applied))
        if nxt is not None:
            applied = nxt
        if hc.converged and nxt is None:
            break
    return applied


@settings(max_examples=30, deadline=None)
@given(opt_a=st.integers(0, 5), opt_b=st.integers(0, 4),
       start_a=st.integers(0, 5), start_b=st.integers(0, 4))
def test_converges_to_unimodal_optimum(opt_a, opt_b, start_a, start_b):
    hc = HillClimber(make_space(), {"a": start_a, "b": start_b}, eps=0.001,
                     warmup_epochs=0, settle_epochs=0)
    score = lambda c: 100.0 - (c["a"] - opt_a) ** 2 - (c["b"] - opt_b) ** 2
    drive(hc, score)
    assert hc.converged
    assert hc.current == {"a": opt_a, "b": opt_b}


@settings(max_examples=20, deadline=None)
@given(seed=st.integers(0, 10_000))
def test_never_leaves_valid_region(seed):
    import random
    rng = random.Random(seed)
    valid = lambda c: c["a"] >= c["b"]
    space = ParamSpace({"a": tuple(range(6)), "b": tuple(range(5))},
                       is_valid=valid)
    hc = HillClimber(space, {"a": 2, "b": 2}, eps=0.01,
                     warmup_epochs=0, settle_epochs=0)
    for _ in range(200):
        nxt = hc.on_epoch(rng.random() * 10)
        assert valid(hc.current)
        if nxt is not None:
            assert valid(nxt)


@settings(max_examples=20, deadline=None)
@given(seed=st.integers(0, 10_000))
def test_random_scores_eventually_converge_or_keep_exploring_validly(seed):
    """Even with pure-noise scores the climber never crashes and its
    bookkeeping stays consistent."""
    import random
    rng = random.Random(seed)
    hc = HillClimber(make_space(), {"a": 3, "b": 2}, eps=0.05,
                     warmup_epochs=2, settle_epochs=1)
    for _ in range(300):
        hc.on_epoch(1.0 + rng.random())
    assert 0 <= hc.indices["a"] < 6
    assert 0 <= hc.indices["b"] < 5


def test_watchdog_restarts_after_score_collapse():
    hc = HillClimber(make_space(), {"a": 3, "b": 2}, eps=0.01,
                     warmup_epochs=0, settle_epochs=0, watchdog_drop=0.2)
    drive(hc, lambda c: 10.0)  # flat: converges immediately
    assert hc.converged
    for _ in range(30):  # scores collapse while holding
        hc.on_epoch(1.0)
        if not hc.converged:
            break
    assert hc.watchdog_resets >= 1
    assert not hc.converged  # exploring again


def test_settle_epochs_skip_measurements():
    hc = HillClimber(make_space(), {"a": 3, "b": 2}, eps=0.01,
                     warmup_epochs=0, settle_epochs=3)
    first = hc.on_epoch(10.0)  # base measured -> proposes a trial
    assert first is not None
    # The next 3 epochs are settle (ignored): no decision, no new config.
    for _ in range(3):
        assert hc.on_epoch(999.0) is None
    # Now the trial is scored.
    out = hc.on_epoch(20.0)
    assert out is not None or hc.converged
